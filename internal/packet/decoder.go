package packet

import (
	"fmt"
)

// LayerType identifies a protocol layer decoded by Decoder.
type LayerType uint8

// Layer types produced by Decoder.
const (
	LayerNone LayerType = iota
	LayerEthernet
	LayerIPv4
	LayerIPv6
	LayerTCP
	LayerUDP
	LayerICMPv4
	LayerPayload
)

// String names the layer type.
func (lt LayerType) String() string {
	switch lt {
	case LayerNone:
		return "None"
	case LayerEthernet:
		return "Ethernet"
	case LayerIPv4:
		return "IPv4"
	case LayerIPv6:
		return "IPv6"
	case LayerTCP:
		return "TCP"
	case LayerUDP:
		return "UDP"
	case LayerICMPv4:
		return "ICMPv4"
	case LayerPayload:
		return "Payload"
	default:
		return fmt.Sprintf("LayerType(%d)", uint8(lt))
	}
}

// Decoder decodes Ethernet/IPv4(6)/transport stacks into preallocated layer
// structs, in the style of gopacket's DecodingLayerParser: no allocation on
// the hot path, layers overwritten on each call. A Decoder is not safe for
// concurrent use; each dataplane worker owns one.
type Decoder struct {
	Eth     Ethernet
	IP4     IPv4
	IP6     IPv6
	TCP     TCP
	UDP     UDP
	ICMP    ICMPv4
	Payload []byte

	decoded []LayerType
}

// NewDecoder returns a ready Decoder.
func NewDecoder() *Decoder {
	return &Decoder{decoded: make([]LayerType, 0, 4)}
}

// Decode parses data starting at the Ethernet layer. It returns the list of
// decoded layers (valid until the next call). Unknown or unsupported inner
// layers terminate decoding with the bytes exposed as Payload; that is not
// an error. Truncated or malformed headers return an error alongside the
// layers decoded so far.
func (d *Decoder) Decode(data []byte) ([]LayerType, error) {
	d.decoded = d.decoded[:0]
	d.Payload = nil

	rest, err := d.Eth.Decode(data)
	if err != nil {
		return d.decoded, err
	}
	d.decoded = append(d.decoded, LayerEthernet)

	var proto IPProto
	switch d.Eth.Type {
	case EtherTypeIPv4:
		rest, err = d.IP4.Decode(rest)
		if err != nil {
			return d.decoded, err
		}
		d.decoded = append(d.decoded, LayerIPv4)
		proto = d.IP4.Protocol
	case EtherTypeIPv6:
		rest, err = d.IP6.Decode(rest)
		if err != nil {
			return d.decoded, err
		}
		d.decoded = append(d.decoded, LayerIPv6)
		proto = d.IP6.NextHeader
	default:
		d.Payload = rest
		if len(rest) > 0 {
			d.decoded = append(d.decoded, LayerPayload)
		}
		return d.decoded, nil
	}

	switch proto {
	case ProtoTCP:
		rest, err = d.TCP.Decode(rest)
		if err != nil {
			return d.decoded, err
		}
		d.decoded = append(d.decoded, LayerTCP)
	case ProtoUDP:
		rest, err = d.UDP.Decode(rest)
		if err != nil {
			return d.decoded, err
		}
		d.decoded = append(d.decoded, LayerUDP)
	case ProtoICMP:
		rest, err = d.ICMP.Decode(rest)
		if err != nil {
			return d.decoded, err
		}
		d.decoded = append(d.decoded, LayerICMPv4)
	default:
		d.Payload = rest
		if len(rest) > 0 {
			d.decoded = append(d.decoded, LayerPayload)
		}
		return d.decoded, nil
	}

	d.Payload = rest
	if len(rest) > 0 {
		d.decoded = append(d.decoded, LayerPayload)
	}
	return d.decoded, nil
}

// Has reports whether the last Decode produced the given layer.
func (d *Decoder) Has(lt LayerType) bool {
	for _, l := range d.decoded {
		if l == lt {
			return true
		}
	}
	return false
}

// SrcPort returns the transport source port of the last decoded packet, or
// 0 when no transport layer was decoded.
func (d *Decoder) SrcPort() uint16 {
	if d.Has(LayerTCP) {
		return d.TCP.SrcPort
	}
	if d.Has(LayerUDP) {
		return d.UDP.SrcPort
	}
	return 0
}

// DstPort returns the transport destination port of the last decoded packet,
// or 0 when no transport layer was decoded.
func (d *Decoder) DstPort() uint16 {
	if d.Has(LayerTCP) {
		return d.TCP.DstPort
	}
	if d.Has(LayerUDP) {
		return d.UDP.DstPort
	}
	return 0
}
