// Package repro_test is the benchmark harness of the reproduction: one
// benchmark per paper table/figure (regenerating the artifact and reporting
// its headline numbers as custom benchmark metrics) plus the ablations from
// DESIGN.md's per-experiment index and microbenchmarks of the hot dataplane
// paths.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Each artifact benchmark executes a full experiment per iteration (several
// hundred ms of simulated traffic), so Go's default -benchtime usually runs
// them once; the custom metrics (gap_%, Gbps, µs) carry the reproduced
// values.
package repro_test

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/chainsim"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/emul"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/metrics"
	"repro/internal/nf"
	"repro/internal/packet"
	"repro/internal/pcie"
	"repro/internal/scenario"
	"repro/internal/traffic"
)

// quick returns the canonical parameters with a reduced size sweep for the
// per-table benches that do not need all six sizes.
func quick() scenario.Params {
	p := scenario.DefaultParams()
	p.PacketSizes = []int{64, 1024, 1500}
	return p
}

// BenchmarkTable1Capacities regenerates Table 1 (E1): measured saturation
// throughput of each vNF on each device.
func BenchmarkTable1Capacities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.Table1(quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + a.Render())
		}
	}
}

// BenchmarkFigure1Crossings regenerates the Figure 1 narrative (E4):
// placements, borders and crossing counts of Original/Naive/PAM.
func BenchmarkFigure1Crossings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.Figure1(quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + a.Render())
		}
	}
}

// BenchmarkFigure2aLatency regenerates Figure 2(a) (E2): the latency
// comparison across the 64B–1500B sweep. Reports the three average
// latencies in µs.
func BenchmarkFigure2aLatency(b *testing.B) {
	p := scenario.DefaultParams()
	for i := 0; i < b.N; i++ {
		outs, err := experiments.SweepPolicies(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range outs {
			b.ReportMetric(o.AvgLatency, o.Name+"_µs")
		}
		if i == 0 {
			a, err := experiments.Figure2a(p)
			if err != nil {
				b.Fatal(err)
			}
			b.Log("\n" + a.Render())
		}
	}
}

// BenchmarkFigure2bThroughput regenerates Figure 2(b) (E3): delivered
// throughput under overload. Reports the three averages in Gbps.
func BenchmarkFigure2bThroughput(b *testing.B) {
	p := scenario.DefaultParams()
	for i := 0; i < b.N; i++ {
		outs, err := experiments.SweepPolicies(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range outs {
			b.ReportMetric(o.AvgThrough, o.Name+"_Gbps")
		}
		if i == 0 {
			a, err := experiments.Figure2b(p)
			if err != nil {
				b.Fatal(err)
			}
			b.Log("\n" + a.Render())
		}
	}
}

// BenchmarkPCIeCrossing measures the modelled per-crossing cost (E5, the §1
// "tens of microseconds" claim) across the size sweep.
func BenchmarkPCIeCrossing(b *testing.B) {
	link := pcie.DefaultLink()
	var sink time.Duration
	for i := 0; i < b.N; i++ {
		for _, size := range scenario.DefaultParams().PacketSizes {
			sink += link.CrossingTime(size)
		}
	}
	b.ReportMetric(float64(link.CrossingTime(1024).Microseconds()), "crossing_µs")
	_ = sink
}

// BenchmarkHeadline18Percent regenerates §3's summary claim (E6): PAM's
// average latency across the sweep is ≈18% below the naive policy's.
func BenchmarkHeadline18Percent(b *testing.B) {
	p := scenario.DefaultParams()
	for i := 0; i < b.N; i++ {
		_, gap, err := experiments.Headline(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(gap*100, "gap_%")
		if gap < 0.12 || gap > 0.25 {
			b.Fatalf("headline gap %.1f%% strays from the paper's 18%%", gap*100)
		}
	}
}

// BenchmarkAblationPCIeSweep runs ablation A1: how the headline gap depends
// on the per-crossing PCIe latency.
func BenchmarkAblationPCIeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.AblationPCIe(scenario.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + a.Render())
		}
	}
}

// BenchmarkAblationNaiveVariants runs ablation A2: the three readings of the
// naive policy against PAM.
func BenchmarkAblationNaiveVariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.AblationNaive(quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + a.Render())
		}
	}
}

// BenchmarkFutureFPGA runs the §4 future-work experiment (A3).
func BenchmarkFutureFPGA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.FutureFPGA(quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + a.Render())
		}
	}
}

// BenchmarkMultiStepMigration runs ablation A4: the Step-3 sliding-border
// loop migrating several vNFs.
func BenchmarkMultiStepMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.MultiStep(quick())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + a.Render())
		}
	}
}

// --- microbenchmarks of the hot paths ---------------------------------------

// BenchmarkDataplane measures the execution emulator's packet path end to
// end — 512-byte frames through the four-element Figure-1 chain — across
// batch sizes. Batch 1 is the old per-frame dataplane (one gate
// transaction, one decode context, one meter update per frame); larger
// batches amortize those costs per burst. Reports frames/s as a custom
// metric; run with -benchmem to see the allocs/op contrast.
func BenchmarkDataplane(b *testing.B) {
	for _, bs := range []int{1, 8, 32, 64} {
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) {
			rt, err := emul.New(emul.Config{
				Chain:   scenario.Figure1Chain(),
				Catalog: device.Table1(),
				Link:    pcie.DefaultLink(),
				// Scale 0.1 lifts the shared NIC budget (the Figure-1
				// residents saturate it at ≈1.1 Gbps × 10 ≈ 1.4 GB/s) above
				// what the host can push, so the device gates never
				// throttle and the bench measures the dataplane code.
				Scale:      0.1,
				QueueDepth: 4096,
				BatchSize:  bs,
				Workers:    2,
				PoolFrames: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			rt.Start()
			synth := traffic.NewSynth(16, 1)
			tmpls := make([][]byte, 16)
			for i := range tmpls {
				tmpls[i] = synth.Frame(uint64(i), 512)
			}
			b.SetBytes(512)
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				tmpl := tmpls[i%16]
				f := rt.AcquireFrame(len(tmpl))
				copy(f, tmpl)
				for !rt.Send(f) {
					runtime.Gosched() // ingress full: pipeline backpressure
				}
			}
			rt.Drain()
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "frames/s")
			b.StopTimer()
			rt.Close()
		})
	}
}

// BenchmarkMultiTenantDataplane measures the multi-chain emulator hosting
// N tenants' chains on one SmartNIC+CPU pair: 512-byte frames round-robin
// across the chains' independent two-element pipelines. Reports aggregate
// frames/s plus the mean per-chain delivered rate (perchain_Gbps) as custom
// metrics, so the bench harness tracks how per-tenant throughput holds as
// tenancy grows.
func BenchmarkMultiTenantDataplane(b *testing.B) {
	for _, n := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("chains=%d", n), func(b *testing.B) {
			rt := newTenantBenchRuntime(b, n)
			rt.Start()
			synth := traffic.NewSynth(16, 1)
			tmpls := make([][]byte, 16)
			for i := range tmpls {
				tmpls[i] = synth.Frame(uint64(i), 512)
			}
			b.SetBytes(512)
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				tmpl := tmpls[i%16]
				f := rt.AcquireFrame(len(tmpl))
				copy(f, tmpl)
				for !rt.SendChain(i%n, f) {
					runtime.Gosched() // ingress full: pipeline backpressure
				}
			}
			rt.Drain()
			reportTenantMetrics(b, rt, n, time.Since(start))
			b.StopTimer()
			rt.Close()
		})
	}
}

// newTenantBenchRuntime builds the n-tenant Monitor→Firewall dataplane the
// multi-tenant benches share.
func newTenantBenchRuntime(b *testing.B, n int) *emul.Runtime {
	b.Helper()
	chains := make([]*chain.Chain, n)
	for i := range chains {
		c, err := chain.New(fmt.Sprintf("tenant-%d", i),
			chain.Element{Name: fmt.Sprintf("t%d-mon", i), Type: device.TypeMonitor, Loc: device.KindSmartNIC},
			chain.Element{Name: fmt.Sprintf("t%d-fw", i), Type: device.TypeFirewall, Loc: device.KindSmartNIC},
		)
		if err != nil {
			b.Fatal(err)
		}
		chains[i] = c
	}
	rt, err := emul.New(emul.Config{
		Chains:  chains,
		Catalog: device.Table1(),
		Link:    pcie.DefaultLink(),
		// Scale 0.1: the shared NIC budget stays above the host's
		// push rate, so the bench measures multi-chain dataplane
		// scaling, not gate contention (that is
		// BenchmarkSharedDeviceContention's job).
		Scale:      0.1,
		QueueDepth: 4096,
		BatchSize:  32,
		Workers:    2,
		PoolFrames: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return rt
}

// reportTenantMetrics emits the tenancy curve's two guarded metrics:
// aggregate frames/s and the mean per-chain delivered rate.
func reportTenantMetrics(b *testing.B, rt *emul.Runtime, n int, elapsed time.Duration) {
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "frames/s")
	var perChain float64
	for _, res := range rt.ChainResults() {
		perChain += res.DeliveredGbps
	}
	b.ReportMetric(perChain/float64(n), "perchain_Gbps")
}

// BenchmarkMultiTenantDataplaneParallel is the same tenancy sweep driven by
// concurrent senders — one per chain group — so the single-goroutine
// round-robin send loop of BenchmarkMultiTenantDataplane is not itself the
// bottleneck at high tenancy. Sender g feeds chains g, g+S, g+2S, … where S
// is the sender count (capped at 8).
func BenchmarkMultiTenantDataplaneParallel(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("chains=%d", n), func(b *testing.B) {
			rt := newTenantBenchRuntime(b, n)
			rt.Start()
			synth := traffic.NewSynth(16, 1)
			tmpls := make([][]byte, 16)
			for i := range tmpls {
				tmpls[i] = synth.Frame(uint64(i), 512)
			}
			senders := n
			if senders > 8 {
				senders = 8
			}
			procs := runtime.GOMAXPROCS(0)
			b.SetParallelism((senders + procs - 1) / procs)
			var nextSender atomic.Int64
			b.SetBytes(512)
			b.ResetTimer()
			start := time.Now()
			b.RunParallel(func(pb *testing.PB) {
				g := int(nextSender.Add(1)-1) % senders
				ci := g
				for i := 0; pb.Next(); i++ {
					tmpl := tmpls[i%16]
					f := rt.AcquireFrame(len(tmpl))
					copy(f, tmpl)
					for !rt.SendChain(ci, f) {
						runtime.Gosched() // ingress full: pipeline backpressure
					}
					if ci += senders; ci >= n {
						ci = g
					}
				}
			})
			rt.Drain()
			reportTenantMetrics(b, rt, n, time.Since(start))
			b.StopTimer()
			rt.Close()
		})
	}
}

// BenchmarkSharedDeviceContention measures the shared per-device capacity
// gate under co-resident overload: N single-Monitor tenants saturate one
// emulated SmartNIC at Scale 1000, so the gate — not the host — is the
// bottleneck and Σ demand > 1 must collapse per-tenant delivery. Each
// iteration runs a fixed 200 ms contention window and reports
//
//   - fairness: min/max per-tenant delivered frames (1.0 = the FIFO ticket
//     queue split the budget perfectly evenly), and
//   - agg_Gbps: aggregate delivered rate in catalog units, which must hold
//     near the Monitor's 3.2 Gbps θS regardless of N because the tenants
//     share one device budget.
func BenchmarkSharedDeviceContention(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("elems=%d", n), func(b *testing.B) {
			var fairness, aggGbps float64
			for i := 0; i < b.N; i++ {
				chains := make([]*chain.Chain, n)
				for c := range chains {
					cc, err := chain.New(fmt.Sprintf("tenant-%d", c),
						chain.Element{Name: fmt.Sprintf("m%d", c), Type: device.TypeMonitor, Loc: device.KindSmartNIC},
					)
					if err != nil {
						b.Fatal(err)
					}
					chains[c] = cc
				}
				rt, err := emul.New(emul.Config{
					Chains:     chains,
					Catalog:    device.Table1(),
					Link:       pcie.DefaultLink(),
					Scale:      1000, // Monitor throttles at 400 kB/s: the gate is the bottleneck
					QueueDepth: 64,
					BatchSize:  8,
					PoolFrames: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				rt.Start()
				synth := traffic.NewSynth(8, 1)
				tmpl := synth.Frame(0, 256)
				const window = 200 * time.Millisecond
				start := time.Now()
				for time.Since(start) < window {
					full := true
					for c := 0; c < n; c++ {
						f := rt.AcquireFrame(len(tmpl))
						copy(f, tmpl)
						if rt.SendChain(c, f) {
							full = false
						}
					}
					if full {
						time.Sleep(200 * time.Microsecond) // every ingress saturated
					}
				}
				elapsed := time.Since(start).Seconds()
				res := rt.ChainResults()
				minD, maxD, sumD := res[0].Delivered, res[0].Delivered, uint64(0)
				for _, cr := range res {
					if cr.Delivered < minD {
						minD = cr.Delivered
					}
					if cr.Delivered > maxD {
						maxD = cr.Delivered
					}
					sumD += cr.Delivered
				}
				rt.Close()
				if maxD > 0 {
					fairness = float64(minD) / float64(maxD)
				}
				aggGbps = float64(sumD) * float64(len(tmpl)) * 8 * 1000 / elapsed / 1e9
			}
			b.ReportMetric(fairness, "fairness")
			b.ReportMetric(aggGbps, "agg_Gbps")
		})
	}
}

// BenchmarkPCIeDMAContention measures the shared DMA-engine gate under
// crossing-bound overload: N single-Monitor-on-CPU tenants, each frame
// crossing PCIe twice (ingress + egress), at a link whose 4 Gbps budget
// binds long before the Monitors' CPU capacity (10 Gbps each) or the CPU
// device budget does. Each iteration runs a fixed 200 ms contention window
// and reports
//
//   - crossing_Gbps: aggregate crossing throughput in catalog units, which
//     must hold ≈ the link budget regardless of Workers or tenant count —
//     before the gate, each shard slept its crossings privately and N
//     tenants saw N full links;
//   - agg_Gbps: aggregate delivered rate (crossing_Gbps / 2 here), and
//   - fairness: min/max per-tenant delivered frames under FIFO grants.
func BenchmarkPCIeDMAContention(b *testing.B) {
	const linkGbps = 4.0
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("chains=%d", n), func(b *testing.B) {
			var fairness, aggGbps, crossGbps float64
			for i := 0; i < b.N; i++ {
				chains := make([]*chain.Chain, n)
				for c := range chains {
					cc, err := chain.New(fmt.Sprintf("xing-%d", c),
						chain.Element{Name: fmt.Sprintf("xm%d", c), Type: device.TypeMonitor, Loc: device.KindCPU},
					)
					if err != nil {
						b.Fatal(err)
					}
					chains[c] = cc
				}
				rt, err := emul.New(emul.Config{
					Chains:  chains,
					Catalog: device.Table1(),
					Link:    pcie.Link{PropDelay: 43 * time.Microsecond, BandwidthGbps: linkGbps},
					// Scale 1000: the engine throttles crossings at 500 kB/s
					// aggregate — the gate, not the host, is the bottleneck.
					Scale:      1000,
					QueueDepth: 64,
					BatchSize:  8,
					Workers:    2,
					PoolFrames: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				rt.Start()
				synth := traffic.NewSynth(8, 1)
				tmpl := synth.Frame(0, 256)
				const window = 200 * time.Millisecond
				start := time.Now()
				for time.Since(start) < window {
					full := true
					for c := 0; c < n; c++ {
						f := rt.AcquireFrame(len(tmpl))
						copy(f, tmpl)
						if rt.SendChain(c, f) {
							full = false
						}
					}
					if full {
						time.Sleep(200 * time.Microsecond) // every ingress saturated
					}
				}
				elapsed := time.Since(start).Seconds()
				res := rt.ChainResults()
				minD, maxD, sumD := res[0].Delivered, res[0].Delivered, uint64(0)
				for _, cr := range res {
					if cr.Delivered < minD {
						minD = cr.Delivered
					}
					if cr.Delivered > maxD {
						maxD = cr.Delivered
					}
					sumD += cr.Delivered
				}
				rt.Close()
				if maxD > 0 {
					fairness = float64(minD) / float64(maxD)
				}
				aggGbps = float64(sumD) * float64(len(tmpl)) * 8 * 1000 / elapsed / 1e9
				crossGbps = 2 * aggGbps // two crossings per delivered frame
				// The physical cap: one link-second per second (plus the
				// banked burst and per-burst descriptor overhead slack). A
				// regression to private per-shard links shows up as
				// crossing throughput scaling with N.
				if crossGbps > 1.25*linkGbps {
					b.Fatalf("aggregate crossing throughput %.2f Gbps exceeds the %.1f Gbps link budget: crossings are not sharing the DMA engine", crossGbps, linkGbps)
				}
			}
			b.ReportMetric(fairness, "fairness")
			b.ReportMetric(aggGbps, "agg_Gbps")
			b.ReportMetric(crossGbps, "crossing_Gbps")
		})
	}
}

// BenchmarkMultiChainSelect measures one full Multi-PAM decision over N
// tenant chains sharing an overloaded SmartNIC (aggregate utilization just
// past threshold, so the selector walks the full candidate scan and
// migrates).
func BenchmarkMultiChainSelect(b *testing.B) {
	p := scenario.DefaultParams()
	nic, cpu := scenario.Devices(p)
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("chains=%d", n), func(b *testing.B) {
			loads := make([]core.Load, n)
			for i := range loads {
				c := scenario.Figure1Chain()
				c.Name = fmt.Sprintf("tenant-%d", i)
				// Per-chain throughput scaled so the aggregate NIC demand is
				// the single-chain hot spot's, independent of N.
				loads[i] = core.Load{Chain: c, Throughput: device.Gbps(1.09 / float64(n))}
			}
			v := core.MultiView{Loads: loads, Catalog: device.Table1(), NIC: nic, CPU: cpu}
			sel := core.MultiPAM{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sel.SelectMulti(v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPAMSelect measures one full PAM decision on the Figure-1 chain.
func BenchmarkPAMSelect(b *testing.B) {
	v := scenario.View(scenario.Figure1Chain(), scenario.DefaultParams(), 1.09)
	sel := core.PAM{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.Select(v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecoder measures the allocation-free packet decode path.
func BenchmarkDecoder(b *testing.B) {
	synth := traffic.NewSynth(16, 1)
	frame := synth.Frame(3, 1024)
	d := packet.NewDecoder()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFirewallProcess measures the firewall fast path (established
// flow hitting the connection cache).
func BenchmarkFirewallProcess(b *testing.B) {
	fw := nf.NewFirewall("fw", nf.DefaultFirewallRules(), false)
	synth := traffic.NewSynth(16, 1)
	frame := synth.Frame(2, 512)
	d := packet.NewDecoder()
	d.Decode(frame)
	k, _ := flow.FromDecoder(d)
	ctx := &nf.Ctx{Frame: frame, Decoder: d, FlowKey: k, HasFlow: true}
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.Process(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlowSymmetricHash measures the load-balancer hash.
func BenchmarkFlowSymmetricHash(b *testing.B) {
	k := flow.Key{
		SrcIP:   packet.IPv4Addr{10, 1, 2, 3},
		DstIP:   packet.IPv4Addr{192, 168, 9, 9},
		SrcPort: 5555,
		DstPort: 443,
		Proto:   packet.ProtoTCP,
	}
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += k.SymmetricHash()
	}
	_ = sink
}

// BenchmarkHistogramRecord measures the latency histogram's record path.
func BenchmarkHistogramRecord(b *testing.B) {
	h := metrics.NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i%1_000_000 + 1000))
	}
}

// BenchmarkChainsimThroughput measures the discrete-event simulator itself:
// simulated packets per wall-clock second on the Figure-1 chain.
func BenchmarkChainsimThroughput(b *testing.B) {
	p := scenario.DefaultParams()
	for i := 0; i < b.N; i++ {
		s, err := chainsim.New(chainsim.Config{
			Chain:         scenario.Figure1Chain(),
			Catalog:       device.Table1(),
			NFOverhead:    p.NFOverhead,
			Link:          pcie.Link{PropDelay: p.PCIeLatency, BandwidthGbps: p.PCIeBandwidthGbps},
			DMAEngineGbps: float64(p.DMAEngineGbps),
			QueueCapacity: p.QueueCapacity,
			Seed:          p.Seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		src, err := traffic.NewGen(1.0, traffic.FixedSize(1024), traffic.ProcessCBR, 16, 0, 100*time.Millisecond, p.Seed)
		if err != nil {
			b.Fatal(err)
		}
		s.Inject(src)
		res := s.Run(150 * time.Millisecond)
		b.ReportMetric(float64(res.Delivered), "sim_pkts/op")
	}
}
