#!/bin/sh
# stabilityseeds.sh — sweep the control-loop stability harness over fixed
# seeds. `pamctl stability` exits non-zero when any element ping-pongs
# between devices within the bounce horizon or the detector never fires, so
# this loop fails loudly if a detector or reclaim change destabilizes the
# loop on any seed. CI runs it next to the -race stability tests; the seeds
# match internal/scenario/stability_test.go.
set -eu
seeds="${1:-1 2 3}"
for s in $seeds; do
	echo "=== stability seed $s ==="
	go run ./cmd/pamctl -engine emul -seed "$s" stability
done
echo "=== all seeds stable ==="
