#!/bin/sh
# benchsmoke.sh — run the perf-trajectory bench smoke and write the
# machine-readable artifact to the path given as $1 (default bench_current.json).
#
# This is the single definition of "the smoke": CI runs it to produce the
# artifact it diffs against the checked-in BENCH.json baseline, and a
# baseline refresh is the same script pointed at the baseline itself:
#
#	./scripts/benchsmoke.sh BENCH.json   # refresh the checked-in baseline
#
# The emulation benches average 10 iterations and the whole smoke repeats
# 3 times (-count=3): single iterations of a wall-clock emulation on a
# shared runner swing by 2×, so the artifact carries all three samples and
# benchdiff ratchets best-of-3 against best-of-3. The gate micro-benchmark
# runs a fixed 2M iterations so its frames/s is measured over tens of
# milliseconds, not one 20 ns call. The multi-tenant tenancy sweep likewise
# runs a fixed 50k frames per sample: its guarded metrics (frames/s and
# perchain_Gbps at each chain count — the tenancy-collapse regression guard)
# measure steady-state dataplane throughput, which 10 frames cannot reach —
# at 10 iterations the number is the worker wake-up latency, not the rate.
set -eu
out="${1:-bench_current.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# The numbers below only mean anything if the hot paths stayed
# allocation-free: gate on the compiler's escape analysis before spending
# minutes benchmarking a dataplane that now mallocs per frame.
go run ./cmd/escapecheck ./...

go test -run xxx -bench='^BenchmarkDataplane$|MultiChainSelect|SharedDeviceContention|PCIeDMAContention' \
	-benchtime=10x -count=3 -benchmem . | tee "$tmp"
go test -run xxx -bench='MultiTenantDataplane' -benchtime=50000x -count=3 -benchmem . | tee -a "$tmp"
go test -run xxx -bench='GateContention' -benchtime=2000000x -count=3 -benchmem ./internal/emul/ | tee -a "$tmp"
# The fleet-tier planning cost: a full rebalance of a skewed 64-tenant,
# 4-server registry. Pure coordinator-side arithmetic (no dataplane), so a
# fixed 1000 iterations measures steady-state planning rate without
# wall-clock noise.
go test -run xxx -bench='FleetRebalance' -benchtime=1000x -count=3 -benchmem ./internal/fleet/ | tee -a "$tmp"
go run ./cmd/benchjson -o "$out" < "$tmp"
